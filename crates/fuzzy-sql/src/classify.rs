//! Classification of nested Fuzzy SQL queries into the paper's types.
//!
//! Kim's taxonomy \[18\], extended by the paper to fuzzy queries:
//!
//! * **type N** — the inner block of an `IN` predicate references only its
//!   own relation (Section 4);
//! * **type J** — the inner block has a join (correlation) predicate
//!   referencing the outer relation (Section 4);
//! * **type NX / JX** — the same with the set-exclusion operator `NOT IN`
//!   (Section 5);
//! * **type A / JA** — the inner block computes an aggregate compared with
//!   `op₁` (Section 6); with no correlation the inner block is a constant
//!   and "no unnesting is needed";
//! * **type ALL / JALL** — a quantified comparison (Section 7; `SOME`
//!   unnests like `IN`);
//! * **chain (linear) queries** — `K ≥ 2` blocks, each block nesting one
//!   `IN` sub-query and referencing outer blocks only through correlation
//!   predicates (Section 8).

use crate::ast::{Predicate, Query};
use std::collections::HashSet;

/// The nesting type of a query, following the paper's sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// No sub-queries.
    Flat,
    /// Uncorrelated `IN` (Section 4, Query N).
    TypeN,
    /// Correlated `IN` (Section 4, Query J).
    TypeJ,
    /// Uncorrelated `NOT IN` (Section 5, simpler variant).
    TypeNX,
    /// Correlated `NOT IN` (Section 5, Query JX).
    TypeJX,
    /// Uncorrelated aggregate sub-query (Section 6: constant inner block).
    TypeA,
    /// Correlated aggregate sub-query (Section 6, Query JA).
    TypeJA,
    /// Uncorrelated quantified comparison (Section 7 variant).
    TypeAll,
    /// Correlated quantified comparison (Section 7, Query JALL).
    TypeJAll,
    /// Correlated `SOME`/`ANY` — unnests like type J.
    TypeJSome,
    /// `EXISTS` — unnests to a semi-join-style flat plan (the paper notes
    /// EXISTS "can be unnested similarly" to Section 7's quantifiers).
    TypeExists,
    /// `NOT EXISTS` — unnests to the grouped-MIN anti form of Section 5.
    TypeNotExists,
    /// A K-level chain (linear) query, K ≥ 3 (Section 8). Depth-2 chains are
    /// `TypeN`/`TypeJ`.
    Chain(usize),
    /// `EXISTS`, multiple sub-queries per block, or other shapes outside the
    /// paper's unnesting catalogue; evaluated by the naive method.
    General,
}

/// Classifies a parsed query.
pub fn classify(q: &Query) -> QueryClass {
    let subs: Vec<&Predicate> = q
        .predicates
        .iter()
        .filter(|p| !matches!(p, Predicate::Compare { .. } | Predicate::Similar { .. }))
        .collect();
    match subs.len() {
        0 => QueryClass::Flat,
        1 => classify_single(q, subs[0]),
        _ => QueryClass::General,
    }
}

fn classify_single(outer: &Query, sub: &Predicate) -> QueryClass {
    match sub {
        Predicate::In { negated, query, .. } => {
            if query.depth() == 1 {
                let corr = is_correlated(query, outer);
                match (negated, corr) {
                    (false, false) => QueryClass::TypeN,
                    (false, true) => QueryClass::TypeJ,
                    (true, false) => QueryClass::TypeNX,
                    (true, true) => QueryClass::TypeJX,
                }
            } else if *negated {
                QueryClass::General
            } else if let Some(k) = chain_depth(outer) {
                QueryClass::Chain(k)
            } else {
                QueryClass::General
            }
        }
        Predicate::AggSubquery { query, .. } => {
            if query.depth() != 1 {
                return QueryClass::General;
            }
            if is_correlated(query, outer) {
                QueryClass::TypeJA
            } else {
                QueryClass::TypeA
            }
        }
        Predicate::Quantified { quantifier, query, .. } => {
            if query.depth() != 1 {
                return QueryClass::General;
            }
            match quantifier {
                crate::ast::Quantifier::All => {
                    if is_correlated(query, outer) {
                        QueryClass::TypeJAll
                    } else {
                        QueryClass::TypeAll
                    }
                }
                crate::ast::Quantifier::Some => QueryClass::TypeJSome,
            }
        }
        Predicate::Exists { negated, query } => {
            if query.depth() != 1 {
                return QueryClass::General;
            }
            if *negated {
                QueryClass::TypeNotExists
            } else {
                QueryClass::TypeExists
            }
        }
        Predicate::Compare { .. } | Predicate::Similar { .. } => {
            unreachable!("filtered by caller")
        }
    }
}

/// True iff `inner` references a table binding that is not in its own FROM
/// clause (a correlation predicate). Only qualified column references count;
/// unqualified names resolve to the innermost enclosing block.
pub fn is_correlated(inner: &Query, _outer: &Query) -> bool {
    let own: HashSet<&str> = inner.from.iter().map(|t| t.binding_name()).collect();
    predicate_columns(inner).iter().any(|t| !own.contains(t.as_str()))
}

/// The qualifiers of all column references in the query's own predicates
/// (not descending into sub-queries).
fn predicate_columns(q: &Query) -> Vec<String> {
    let mut out = Vec::new();
    for p in &q.predicates {
        let operands: Vec<&crate::ast::Operand> = match p {
            Predicate::Compare { lhs, rhs, .. } | Predicate::Similar { lhs, rhs, .. } => {
                vec![lhs, rhs]
            }
            Predicate::In { lhs, .. }
            | Predicate::Quantified { lhs, .. }
            | Predicate::AggSubquery { lhs, .. } => vec![lhs],
            Predicate::Exists { .. } => vec![],
        };
        for o in operands {
            if let crate::ast::Operand::Column(c) = o {
                if let Some(t) = &c.table {
                    out.push(t.clone());
                }
            }
        }
    }
    out
}

/// If the query is a chain (linear) query per Section 8, its block count.
///
/// A chain query's every block has exactly one sub-query predicate, of kind
/// non-negated `IN`; the innermost block has none. Correlation predicates may
/// reference any enclosing block. No aggregates, quantifiers, exclusions, or
/// `EXISTS` anywhere.
pub fn chain_depth(q: &Query) -> Option<usize> {
    let mut depth = 1usize;
    let mut block = q;
    loop {
        let mut sub: Option<&Query> = None;
        for p in &block.predicates {
            match p {
                Predicate::Compare { .. } | Predicate::Similar { .. } => {}
                Predicate::In { negated: false, query, .. } => {
                    if sub.is_some() {
                        return None; // more than one sub-query in a block
                    }
                    sub = Some(query);
                }
                _ => return None,
            }
        }
        match sub {
            None => return Some(depth),
            Some(next) => {
                depth += 1;
                block = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn class_of(sql: &str) -> QueryClass {
        classify(&parse(sql).unwrap())
    }

    #[test]
    fn flat_queries() {
        assert_eq!(class_of("SELECT F.NAME FROM F WHERE F.AGE = 'young'"), QueryClass::Flat);
        assert_eq!(class_of("SELECT F.NAME FROM F, M WHERE F.AGE = M.AGE"), QueryClass::Flat);
    }

    #[test]
    fn type_n_vs_type_j() {
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S)"),
            QueryClass::TypeN
        );
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)"),
            QueryClass::TypeJ
        );
        // Paper Query 2 is type N.
        assert_eq!(
            class_of(
                "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
                 (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
            ),
            QueryClass::TypeN
        );
    }

    #[test]
    fn exclusion_types() {
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S)"),
            QueryClass::TypeNX
        );
        // Paper Query 4 is type JX.
        assert_eq!(
            class_of(
                "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME IS NOT IN \
                 (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)"
            ),
            QueryClass::TypeJX
        );
    }

    #[test]
    fn aggregate_types() {
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE R.Y > (SELECT AVG(S.Z) FROM S)"),
            QueryClass::TypeA
        );
        // Paper Query 5 is type JA.
        assert_eq!(
            class_of(
                "SELECT R.NAME FROM CITIES_REGION_A R WHERE R.AVE_HOME_INCOME > \
                 (SELECT MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S \
                  WHERE S.POPULATION = R.POPULATION)"
            ),
            QueryClass::TypeJA
        );
    }

    #[test]
    fn quantified_types() {
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)"),
            QueryClass::TypeJAll
        );
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Z FROM S)"),
            QueryClass::TypeAll
        );
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE R.Y = SOME (SELECT S.Z FROM S WHERE S.V = R.U)"),
            QueryClass::TypeJSome
        );
    }

    #[test]
    fn chains() {
        // Paper Query 6: a 3-block chain.
        let q6 = "SELECT R1.X1 FROM R1 WHERE R1.Y1 IN \
                  (SELECT R2.X2 FROM R2 WHERE R2.U2 = R1.U1 AND R2.X2 IN \
                   (SELECT R3.X3 FROM R3 WHERE R3.V3 = R2.V2 AND R3.W3 = R1.W1))";
        assert_eq!(class_of(q6), QueryClass::Chain(3));
        // A 4-level chain.
        let q = "SELECT A.X FROM A WHERE A.Y IN (SELECT B.X FROM B WHERE B.Y IN \
                 (SELECT C.X FROM C WHERE C.Y IN (SELECT D.X FROM D)))";
        assert_eq!(class_of(q), QueryClass::Chain(4));
    }

    #[test]
    fn general_shapes() {
        // NOT IN below the top level breaks the chain property.
        assert_eq!(
            class_of(
                "SELECT A.X FROM A WHERE A.Y IN (SELECT B.X FROM B WHERE B.Y NOT IN \
                 (SELECT C.X FROM C))"
            ),
            QueryClass::General
        );
        // EXISTS now classifies into its own unnestable types.
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE EXISTS (SELECT S.Z FROM S WHERE S.V = R.U)"),
            QueryClass::TypeExists
        );
        assert_eq!(
            class_of("SELECT R.X FROM R WHERE NOT EXISTS (SELECT S.Z FROM S)"),
            QueryClass::TypeNotExists
        );
        // Two sub-queries in one block.
        assert_eq!(
            class_of(
                "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S) AND R.U IN \
                 (SELECT T.W FROM T)"
            ),
            QueryClass::General
        );
    }

    #[test]
    fn correlation_respects_aliases() {
        // Inner references outer's alias: correlated.
        assert_eq!(
            class_of(
                "SELECT R.X FROM BIG_TABLE R WHERE R.Y IN \
                 (SELECT S.Z FROM OTHER S WHERE S.V = R.U)"
            ),
            QueryClass::TypeJ
        );
        // Inner's own alias shadows nothing: uncorrelated.
        assert_eq!(
            class_of(
                "SELECT R.X FROM BIG_TABLE R WHERE R.Y IN \
                 (SELECT S.Z FROM OTHER S WHERE S.V = S.U)"
            ),
            QueryClass::TypeN
        );
    }
}
