//! Statements beyond SELECT: the DDL/DML surface of the database.
//!
//! The paper's system (Omron's Fuzzy LUNA) is queried through SELECT; this
//! module adds the statements a usable database needs, with fuzzy-aware
//! semantics:
//!
//! * `CREATE TABLE t (col TEXT | NUMBER [KEY], …)`
//! * `DEFINE TERM 'name' AS TRAP(a, b, c, d) | TRI(a, b, c) | ABOUT(v, w)`
//! * `INSERT INTO t VALUES (v, …) [WITH D = d]` — the optional degree makes
//!   the tuple a partial member of the relation;
//! * `DELETE FROM t [WHERE …] [WITH D > z]` — removes the tuples satisfying
//!   the condition with positive degree (or meeting the threshold);
//! * `UPDATE t SET col = v, … [WHERE …] [WITH D > z]` — same matching rule.
//!
//! Fuzzy literals `TRAP(…)`, `TRI(…)`, and `ABOUT(v, w)` are also accepted
//! wherever operands appear in WHERE clauses.

use crate::ast::{ColumnRef, Operand, Predicate, Query, Threshold};
use crate::error::{ParseError, Result};
use crate::lexer::tokenize;
use crate::token::TokenKind;

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// True for TEXT columns, false for NUMBER.
    pub is_text: bool,
    /// True if this column is the designated key.
    pub key: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A SELECT query.
    Select(Query),
    /// `CREATE TABLE name (col TYPE [KEY], …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `DEFINE TERM 'name' AS <fuzzy literal>`.
    DefineTerm {
        /// The linguistic term.
        name: String,
        /// Its trapezoid, as `(a, b, c, d)`.
        shape: (f64, f64, f64, f64),
    },
    /// `INSERT INTO t VALUES (…) [WITH D = d]`.
    Insert {
        /// Target table.
        table: String,
        /// Row values (operands: numbers, quoted terms, fuzzy literals).
        values: Vec<Operand>,
        /// Membership degree of the new tuple (default 1).
        degree: f64,
    },
    /// `DELETE FROM t [WHERE …] [WITH D > z]`.
    Delete {
        /// Target table.
        table: String,
        /// Matching conjunction (empty = all tuples).
        predicates: Vec<Predicate>,
        /// Optional matching threshold.
        threshold: Option<Threshold>,
    },
    /// `UPDATE t SET col = v, … [WHERE …] [WITH D > z]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        assignments: Vec<(ColumnRef, Operand)>,
        /// Matching conjunction.
        predicates: Vec<Predicate>,
        /// Optional matching threshold.
        threshold: Option<Threshold>,
    },
    /// `ANALYZE [table]` — build optimizer histograms for the numeric
    /// columns of one table (or of every table).
    Analyze {
        /// The table to analyze, or `None` for all.
        table: Option<String>,
    },
    /// `EXPLAIN [ANALYZE | VERIFY] <select>` — render the unnested plan (or
    /// naive fallback) for a query; with `ANALYZE`, run it and annotate the
    /// plan with the per-operator counters actually observed; with `VERIFY`,
    /// run the static plan verifier and report the physical-property checks.
    Explain {
        /// Which flavour of EXPLAIN was requested.
        mode: ExplainMode,
        /// The query being explained.
        query: Query,
    },
}

/// The flavour of an `EXPLAIN` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// Plain `EXPLAIN`: the deterministic plan rendering.
    #[default]
    Plan,
    /// `EXPLAIN ANALYZE`: execute and report actual per-operator metrics.
    Analyze,
    /// `EXPLAIN VERIFY`: run the static plan verifier and report its checks.
    Verify,
}

/// Parses one statement (SELECT or DDL/DML).
///
/// ```
/// use fuzzy_sql::{parse_statement, Statement};
///
/// let stmt = parse_statement("INSERT INTO F VALUES (1, 'Ann', ABOUT(35, 5))")?;
/// assert!(matches!(stmt, Statement::Insert { degree, .. } if degree == 1.0));
/// # Ok::<(), fuzzy_sql::ParseError>(())
/// ```
pub fn parse_statement(src: &str) -> Result<Statement> {
    let tokens = tokenize(src)?;
    match &tokens.first().map(|t| &t.kind) {
        Some(TokenKind::Keyword(k)) if k == "SELECT" => {
            Ok(Statement::Select(crate::parser::parse(src)?))
        }
        Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case("CREATE") => {
            StatementParser::new(src)?.create_table()
        }
        Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case("DEFINE") => {
            StatementParser::new(src)?.define_term()
        }
        Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case("INSERT") => {
            StatementParser::new(src)?.insert()
        }
        Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case("DELETE") => {
            StatementParser::new(src)?.delete()
        }
        Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case("UPDATE") => {
            StatementParser::new(src)?.update()
        }
        Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case("ANALYZE") => {
            StatementParser::new(src)?.analyze()
        }
        Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case("EXPLAIN") => {
            StatementParser::new(src)?.explain()
        }
        _ => Err(ParseError::at(
            0,
            "expected SELECT, CREATE TABLE, DEFINE TERM, INSERT, DELETE, UPDATE, ANALYZE, \
             or EXPLAIN",
        )),
    }
}

/// A small token cursor for the non-SELECT statements. WHERE clauses are
/// delegated to the main SELECT parser by re-parsing a synthesized query.
struct StatementParser {
    tokens: Vec<crate::token::Token>,
    pos: usize,
    src: String,
}

impl StatementParser {
    fn new(src: &str) -> Result<StatementParser> {
        Ok(StatementParser { tokens: tokenize(src)?, pos: 0, src: src.to_string() })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat_word(&mut self, word: &str) -> bool {
        let hit = match self.peek() {
            TokenKind::Ident(w) => w.eq_ignore_ascii_case(word),
            TokenKind::Keyword(k) => k.eq_ignore_ascii_case(word),
            _ => false,
        };
        if hit {
            self.bump();
        }
        hit
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(ParseError::at(self.offset(), format!("expected {word}, found {}", self.peek())))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::at(self.offset(), format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(ParseError::at(self.offset(), format!("expected a name, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.bump() {
            TokenKind::Number(n) => Ok(n),
            other => {
                Err(ParseError::at(self.offset(), format!("expected a number, found {other}")))
            }
        }
    }

    fn eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(ParseError::at(
                self.offset(),
                format!("unexpected trailing input: {}", self.peek()),
            ))
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_word("CREATE")?;
        self.expect_word("TABLE")?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let is_text = if self.eat_word("TEXT") {
                true
            } else if self.eat_word("NUMBER") {
                false
            } else {
                return Err(ParseError::at(
                    self.offset(),
                    format!("expected TEXT or NUMBER after column {col}"),
                ));
            };
            let key = self.eat_word("KEY");
            columns.push(ColumnDef { name: col, is_text, key });
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        self.expect(TokenKind::RParen)?;
        self.eof()?;
        if columns.iter().filter(|c| c.key).count() > 1 {
            return Err(ParseError::at(0, "at most one KEY column"));
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn fuzzy_shape(&mut self) -> Result<(f64, f64, f64, f64)> {
        if self.eat_word("TRAP") {
            self.expect(TokenKind::LParen)?;
            let a = self.number()?;
            self.expect(TokenKind::Comma)?;
            let b = self.number()?;
            self.expect(TokenKind::Comma)?;
            let c = self.number()?;
            self.expect(TokenKind::Comma)?;
            let d = self.number()?;
            self.expect(TokenKind::RParen)?;
            Ok((a, b, c, d))
        } else if self.eat_word("TRI") {
            self.expect(TokenKind::LParen)?;
            let a = self.number()?;
            self.expect(TokenKind::Comma)?;
            let b = self.number()?;
            self.expect(TokenKind::Comma)?;
            let c = self.number()?;
            self.expect(TokenKind::RParen)?;
            Ok((a, b, b, c))
        } else if self.eat_word("ABOUT") {
            self.expect(TokenKind::LParen)?;
            let v = self.number()?;
            self.expect(TokenKind::Comma)?;
            let w = self.number()?;
            self.expect(TokenKind::RParen)?;
            Ok((v - w, v, v, v + w))
        } else {
            Err(ParseError::at(
                self.offset(),
                format!("expected TRAP(…), TRI(…), or ABOUT(…), found {}", self.peek()),
            ))
        }
    }

    fn define_term(&mut self) -> Result<Statement> {
        self.expect_word("DEFINE")?;
        self.expect_word("TERM")?;
        let name = match self.bump() {
            TokenKind::Str(s) => s,
            other => {
                return Err(ParseError::at(
                    self.offset(),
                    format!("expected a quoted term name, found {other}"),
                ))
            }
        };
        self.expect_word("AS")?;
        let shape = self.fuzzy_shape()?;
        self.eof()?;
        Ok(Statement::DefineTerm { name, shape })
    }

    fn value_operand(&mut self) -> Result<Operand> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Operand::Number(n))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Operand::Term(s))
            }
            TokenKind::Ident(w)
                if ["TRAP", "TRI", "ABOUT"].iter().any(|k| w.eq_ignore_ascii_case(k)) =>
            {
                let (a, b, c, d) = self.fuzzy_shape()?;
                Ok(Operand::FuzzyLiteral(a, b, c, d))
            }
            other => Err(ParseError::at(
                self.offset(),
                format!(
                    "expected a value (number, quoted text/term, or TRAP/TRI/ABOUT), found {other}"
                ),
            )),
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_word("INSERT")?;
        self.expect_word("INTO")?;
        let table = self.ident()?;
        self.expect_word("VALUES")?;
        self.expect(TokenKind::LParen)?;
        let mut values = vec![self.value_operand()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            values.push(self.value_operand()?);
        }
        self.expect(TokenKind::RParen)?;
        let mut degree = 1.0;
        if self.eat_word("WITH") {
            // WITH D = 0.8
            let d = self.ident()?;
            if !d.eq_ignore_ascii_case("D") {
                return Err(ParseError::at(self.offset(), "expected D in the WITH clause"));
            }
            self.expect(TokenKind::Eq)?;
            degree = self.number()?;
            if !(0.0..=1.0).contains(&degree) {
                return Err(ParseError::at(
                    self.offset(),
                    format!("degree {degree} outside [0, 1]"),
                ));
            }
        }
        self.eof()?;
        Ok(Statement::Insert { table, values, degree })
    }

    /// Parses the `[WHERE …] [WITH D > z]` tail by synthesizing a SELECT over
    /// the target table and reusing the main parser (one grammar, one set of
    /// predicate forms).
    fn matching_tail(&mut self, table: &str) -> Result<(Vec<Predicate>, Option<Threshold>)> {
        let rest = &self.src[self.tokens[self.pos].offset..];
        let synthesized = format!("SELECT {table}.{} FROM {table} {rest}", "__match");
        // `__match` is a placeholder select column; only predicates and the
        // threshold are taken from the parse, so it never needs to resolve.
        let q = crate::parser::parse(&synthesized).map_err(|e| {
            ParseError::at(
                self.tokens[self.pos].offset,
                format!("in matching clause: {}", e.message),
            )
        })?;
        if q.order_by.is_some() || q.limit.is_some() || !q.group_by.is_empty() {
            return Err(ParseError::at(
                self.tokens[self.pos].offset,
                "DELETE/UPDATE accept only WHERE and WITH clauses",
            ));
        }
        Ok((q.predicates, q.with_threshold))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_word("DELETE")?;
        self.expect_word("FROM")?;
        let table = self.ident()?;
        if matches!(self.peek(), TokenKind::Eof) {
            return Ok(Statement::Delete { table, predicates: Vec::new(), threshold: None });
        }
        let (predicates, threshold) = self.matching_tail(&table)?;
        Ok(Statement::Delete { table, predicates, threshold })
    }

    fn analyze(&mut self) -> Result<Statement> {
        self.expect_word("ANALYZE")?;
        let table = match self.peek() {
            TokenKind::Eof => None,
            _ => Some(self.ident()?),
        };
        self.eof()?;
        Ok(Statement::Analyze { table })
    }

    /// `EXPLAIN [ANALYZE | VERIFY] <select>`: the tail after the prefix
    /// keywords is re-parsed as a full query by the main parser.
    fn explain(&mut self) -> Result<Statement> {
        self.expect_word("EXPLAIN")?;
        let mode = if self.eat_word("ANALYZE") {
            ExplainMode::Analyze
        } else if self.eat_word("VERIFY") {
            ExplainMode::Verify
        } else {
            ExplainMode::Plan
        };
        if matches!(self.peek(), TokenKind::Eof) {
            return Err(ParseError::at(self.offset(), "expected a SELECT query after EXPLAIN"));
        }
        let base = self.tokens[self.pos].offset;
        let rest = &self.src[base..];
        let query = crate::parser::parse(rest)
            .map_err(|e| ParseError::at(base + e.offset, e.message.clone()))?;
        Ok(Statement::Explain { mode, query })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_word("UPDATE")?;
        let table = self.ident()?;
        self.expect_word("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            let col = if matches!(self.peek(), TokenKind::Dot) {
                self.bump();
                let c = self.ident()?;
                ColumnRef::qualified(col, c)
            } else {
                ColumnRef::new(col)
            };
            self.expect(TokenKind::Eq)?;
            let v = self.value_operand()?;
            assignments.push((col, v));
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        if matches!(self.peek(), TokenKind::Eof) {
            return Ok(Statement::Update {
                table,
                assignments,
                predicates: Vec::new(),
                threshold: None,
            });
        }
        let (predicates, threshold) = self.matching_tail(&table)?;
        Ok(Statement::Update { table, assignments, predicates, threshold })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::CmpOp;

    #[test]
    fn parses_create_table() {
        let s =
            parse_statement("CREATE TABLE People (ID NUMBER KEY, NAME TEXT, AGE NUMBER)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "People");
                assert_eq!(columns.len(), 3);
                assert!(columns[0].key);
                assert!(columns[1].is_text);
                assert!(!columns[2].is_text);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("CREATE TABLE T (A NUMBER KEY, B TEXT KEY)").is_err());
        assert!(parse_statement("CREATE TABLE T (A BLOB)").is_err());
    }

    #[test]
    fn parses_define_term() {
        let s = parse_statement("DEFINE TERM 'warm' AS TRAP(10, 18, 24, 30)").unwrap();
        assert_eq!(
            s,
            Statement::DefineTerm { name: "warm".into(), shape: (10.0, 18.0, 24.0, 30.0) }
        );
        let s = parse_statement("DEFINE TERM 'about 7' AS ABOUT(7, 2)").unwrap();
        assert_eq!(
            s,
            Statement::DefineTerm { name: "about 7".into(), shape: (5.0, 7.0, 7.0, 9.0) }
        );
        let s = parse_statement("DEFINE TERM 'peak' AS TRI(0, 5, 10)").unwrap();
        assert!(matches!(s, Statement::DefineTerm { shape: (0.0, 5.0, 5.0, 10.0), .. }));
    }

    #[test]
    fn parses_insert() {
        let s = parse_statement(
            "INSERT INTO F VALUES (101, 'Ann', ABOUT(35, 5), 'medium high') WITH D = 0.9",
        )
        .unwrap();
        match s {
            Statement::Insert { table, values, degree } => {
                assert_eq!(table, "F");
                assert_eq!(values.len(), 4);
                assert!(matches!(values[2], Operand::FuzzyLiteral(30.0, 35.0, 35.0, 40.0)));
                assert_eq!(degree, 0.9);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("INSERT INTO F VALUES (1) WITH D = 1.5").is_err());
    }

    #[test]
    fn parses_delete_and_update() {
        let s = parse_statement("DELETE FROM F WHERE F.AGE = 'about 50' WITH D > 0.5").unwrap();
        match s {
            Statement::Delete { table, predicates, threshold } => {
                assert_eq!(table, "F");
                assert_eq!(predicates.len(), 1);
                assert!(threshold.unwrap().strict);
            }
            other => panic!("{other:?}"),
        }
        let s = parse_statement("DELETE FROM F").unwrap();
        assert!(matches!(s, Statement::Delete { ref predicates, .. } if predicates.is_empty()));

        let s = parse_statement(
            "UPDATE F SET INCOME = TRI(50, 60, 70), NAME = 'Anna' WHERE F.NAME = 'Ann'",
        )
        .unwrap();
        match s {
            Statement::Update { assignments, predicates, .. } => {
                assert_eq!(assignments.len(), 2);
                assert!(matches!(predicates[0], Predicate::Compare { op: CmpOp::Eq, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_routes_to_the_main_parser() {
        let s = parse_statement("SELECT F.NAME FROM F").unwrap();
        assert!(matches!(s, Statement::Select(_)));
    }

    #[test]
    fn parses_analyze() {
        assert_eq!(
            parse_statement("ANALYZE PEOPLE").unwrap(),
            Statement::Analyze { table: Some("PEOPLE".into()) }
        );
        assert_eq!(parse_statement("ANALYZE").unwrap(), Statement::Analyze { table: None });
        assert!(parse_statement("ANALYZE a b").is_err());
    }

    #[test]
    fn parses_explain() {
        let s = parse_statement("EXPLAIN SELECT F.NAME FROM F").unwrap();
        match s {
            Statement::Explain { mode, query } => {
                assert_eq!(mode, ExplainMode::Plan);
                assert_eq!(query.from.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        let s =
            parse_statement("explain analyze SELECT F.NAME FROM F WHERE F.AGE = 'young'").unwrap();
        assert!(matches!(s, Statement::Explain { mode: ExplainMode::Analyze, .. }));
        let s = parse_statement("EXPLAIN VERIFY SELECT F.NAME FROM F").unwrap();
        assert!(matches!(s, Statement::Explain { mode: ExplainMode::Verify, .. }));
        // Errors inside the query are reported at the right offset.
        let e = parse_statement("EXPLAIN SELECT").unwrap_err();
        assert!(e.offset >= "EXPLAIN ".len(), "offset {} not rebased", e.offset);
        assert!(parse_statement("EXPLAIN").is_err());
        assert!(parse_statement("EXPLAIN ANALYZE").is_err());
        assert!(parse_statement("EXPLAIN VERIFY").is_err());
    }

    #[test]
    fn junk_statements_error() {
        assert!(parse_statement("DROP TABLE F").is_err());
        assert!(parse_statement("").is_err());
        assert!(parse_statement("INSERT INTO F VALUES (1) garbage").is_err());
    }
}

#[cfg(test)]
mod negative_number_tests {
    use super::*;

    #[test]
    fn negative_breakpoints_in_terms() {
        let s = parse_statement("DEFINE TERM 'freezing' AS TRAP(-30, -20, -5, 0)").unwrap();
        assert_eq!(
            s,
            Statement::DefineTerm { name: "freezing".into(), shape: (-30.0, -20.0, -5.0, 0.0) }
        );
        let s = parse_statement("INSERT INTO T VALUES (-7, ABOUT(-2, 1))").unwrap();
        match s {
            Statement::Insert { values, .. } => {
                assert_eq!(values[0], Operand::Number(-7.0));
                assert!(matches!(values[1], Operand::FuzzyLiteral(-3.0, -2.0, -2.0, -1.0)));
            }
            other => panic!("{other:?}"),
        }
    }
}
