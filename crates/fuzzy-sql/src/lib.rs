//! # fuzzy-sql
//!
//! Front end for the Fuzzy SQL language of the paper (as defined in the Omron
//! Fuzzy LUNA manuals, \[25\], \[23\]): lexer, AST, recursive-descent parser, and
//! the classifier that maps nested queries onto the paper's type catalogue
//! (N, J, JX, JA, JALL, chains — Sections 4–8).
//!
//! ## Example
//!
//! ```
//! use fuzzy_sql::{parse, classify, QueryClass};
//!
//! // The paper's Query 2: a type N nested query.
//! let q = parse(
//!     "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
//!      (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')",
//! )?;
//! assert_eq!(classify(&q), QueryClass::TypeN);
//! assert_eq!(q.depth(), 2);
//! # Ok::<(), fuzzy_sql::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod classify;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod statement;
pub mod token;

pub use ast::{
    AggFunc, ColumnRef, HavingOperand, HavingPredicate, Operand, OrderBy, OrderKey, Predicate,
    Quantifier, Query, SelectItem, TableRef, Threshold,
};
pub use classify::{chain_depth, classify, is_correlated, QueryClass};
pub use error::{ParseError, Result};
pub use parser::parse;
pub use statement::{parse_statement, ColumnDef, ExplainMode, Statement};
