//! The abstract syntax of Fuzzy SQL queries.
//!
//! Fuzzy SQL (as defined in the Omron Fuzzy LUNA manuals, \[25\], \[23\] of the
//! paper) extends the SELECT statement of SQL with graded predicates, a
//! `WITH D > z` membership-threshold clause, and linguistic terms as
//! literals. The WHERE clause is a conjunction of predicates `X θ Y` where
//! `X` is an attribute and `Y` an attribute or value, plus nested-query
//! predicates: `[NOT] IN`, quantified comparisons (`θ ALL`, `θ SOME`),
//! comparisons against aggregate sub-queries, and `EXISTS`.

use fuzzy_core::CmpOp;
use std::fmt;

/// A (possibly nested) SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`? (Answers are always duplicate-eliminated by the
    /// fuzzy-OR semantics; `DISTINCT` is accepted for SQL compatibility.)
    pub distinct: bool,
    /// Select list.
    pub select: Vec<SelectItem>,
    /// FROM clause: relations with optional aliases.
    pub from: Vec<TableRef>,
    /// WHERE clause as a conjunction of predicates (possibly empty).
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns (used by the unnested JX/JA/JALL forms).
    pub group_by: Vec<ColumnRef>,
    /// HAVING conjunction over group aggregates.
    pub having: Vec<HavingPredicate>,
    /// `WITH D > z` (strict) or `WITH D >= z`. `None` means `WITH D > 0`.
    pub with_threshold: Option<Threshold>,
    /// `ORDER BY` specification applied to the final answer.
    pub order_by: Option<OrderBy>,
    /// `LIMIT n` applied after ordering: the top-k answers.
    pub limit: Option<usize>,
}

impl Query {
    /// A minimal query skeleton: `SELECT <items> FROM <tables>`.
    pub fn new(select: Vec<SelectItem>, from: Vec<TableRef>) -> Query {
        Query {
            distinct: false,
            select,
            from,
            predicates: Vec::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            with_threshold: None,
            order_by: None,
            limit: None,
        }
    }

    /// All sub-queries appearing directly in this query's predicates.
    pub fn direct_subqueries(&self) -> Vec<&Query> {
        self.predicates
            .iter()
            .filter_map(|p| match p {
                Predicate::In { query, .. }
                | Predicate::Quantified { query, .. }
                | Predicate::AggSubquery { query, .. }
                | Predicate::Exists { query, .. } => Some(query.as_ref()),
                Predicate::Compare { .. } | Predicate::Similar { .. } => None,
            })
            .collect()
    }

    /// Nesting depth: 1 for a flat query.
    pub fn depth(&self) -> usize {
        1 + self.direct_subqueries().iter().map(|q| q.depth()).max().unwrap_or(0)
    }
}

/// The membership-degree threshold of a `WITH` clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    /// The bound `z ∈ [0, 1]`.
    pub z: f64,
    /// True for `D > z`, false for `D >= z`.
    pub strict: bool,
}

/// An item in the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column.
    Column(ColumnRef),
    /// An aggregate over a column, e.g. `MAX(S.INCOME)`.
    Aggregate(AggFunc, ColumnRef),
    /// `MIN(D)` — the aggregate over the membership degree used by the
    /// unnested JX/JALL forms of Sections 5 and 7.
    MinDegree,
    /// `COUNT(*)`.
    CountStar,
}

/// A table in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// The relation name.
    pub table: String,
    /// Optional alias; predicates reference the alias if present.
    pub alias: Option<String>,
}

impl TableRef {
    /// A table without alias.
    pub fn named(table: impl Into<String>) -> TableRef {
        TableRef { table: table.into(), alias: None }
    }

    /// The name predicates use to reference this table.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A column reference, optionally qualified: `R.X` or `X`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// The qualifying table or alias, if written.
    pub table: Option<String>,
    /// The attribute name, or `"D"` for the membership degree attribute.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column.
    pub fn new(column: impl Into<String>) -> ColumnRef {
        ColumnRef { table: None, column: column.into() }
    }

    /// A qualified column.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef { table: Some(table.into()), column: column.into() }
    }

    /// True iff this references the membership-degree attribute `D`.
    pub fn is_degree(&self) -> bool {
        self.column.eq_ignore_ascii_case("D")
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// An operand of a simple predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A column.
    Column(ColumnRef),
    /// A crisp numeric literal.
    Number(f64),
    /// A quoted literal: a linguistic term over a numeric attribute, or a
    /// plain string over a text attribute (resolved at bind time).
    Term(String),
    /// An inline fuzzy literal — `TRAP(a, b, c, d)`, `TRI(a, b, c)`, or
    /// `ABOUT(v, w)` — stored as trapezoid breakpoints.
    FuzzyLiteral(f64, f64, f64, f64),
}

/// Aggregate functions (Section 6 semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of values in the fuzzy set.
    Count,
    /// Fuzzy addition.
    Sum,
    /// Fuzzy addition and division.
    Avg,
    /// Defuzzified minimum (centre of the 1-cut).
    Min,
    /// Defuzzified maximum.
    Max,
}

impl AggFunc {
    /// Parses an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Quantifiers of comparisons against sub-queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `θ ALL (…)`: the comparison must hold against every member.
    All,
    /// `θ SOME (…)` / `θ ANY (…)`: against at least one member.
    Some,
}

/// The ordering of the final answer.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// What to order on: the membership degree `D`, or a value column
    /// (ordered by the interval order `⪯` of Definition 3.1).
    pub key: OrderKey,
    /// Descending order (`DESC`)?
    pub descending: bool,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    /// The membership degree attribute `D` — possibilistic top-k answers.
    Degree,
    /// A select-list column, ordered by `⪯`.
    Column(ColumnRef),
}

/// A HAVING predicate: an aggregate (or group column) compared with an
/// operand.
#[derive(Debug, Clone, PartialEq)]
pub struct HavingPredicate {
    /// The left side: an aggregate over the group or a group key column.
    pub lhs: HavingOperand,
    /// Comparison operator.
    pub op: CmpOp,
    /// The right side.
    pub rhs: HavingOperand,
}

/// An operand in a HAVING comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum HavingOperand {
    /// An aggregate call, e.g. `COUNT(S.Z)`.
    Aggregate(AggFunc, ColumnRef),
    /// `COUNT(*)`.
    CountStar,
    /// A group key column.
    Column(ColumnRef),
    /// A numeric literal.
    Number(f64),
    /// A quoted term (vocabulary term over numbers, plain text otherwise).
    Term(String),
}

/// A predicate in a WHERE conjunction.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `X θ Y` with attribute/value operands.
    Compare {
        /// Left operand.
        lhs: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: Operand,
    },
    /// `X ~ Y WITHIN t`: a similarity comparison under the relation
    /// `μ_≈(x, y) = max(0, 1 − |x − y| / t)` — the non-binary θ the paper's
    /// Section 2 permits ("the comparison θ may be nonbinary, i.e., defined
    /// by similarity relations").
    Similar {
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// The tolerance `t > 0`.
        tolerance: f64,
    },
    /// `X [IS] [NOT] IN (subquery)`.
    In {
        /// Left operand.
        lhs: Operand,
        /// True for `NOT IN` (the set-exclusion operator of Section 5).
        negated: bool,
        /// The sub-query (must select a single column).
        query: Box<Query>,
    },
    /// `X θ ALL (…)` or `X θ SOME (…)` (Section 7).
    Quantified {
        /// Left operand.
        lhs: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// The quantifier.
        quantifier: Quantifier,
        /// The sub-query.
        query: Box<Query>,
    },
    /// `X θ (SELECT AGG(…) …)` (Section 6).
    AggSubquery {
        /// Left operand.
        lhs: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// The sub-query (must select a single aggregate).
        query: Box<Query>,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// True for `NOT EXISTS`.
        negated: bool,
        /// The sub-query.
        query: Box<Query>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_counts_nesting() {
        let inner = Query::new(
            vec![SelectItem::Column(ColumnRef::qualified("S", "Z"))],
            vec![TableRef::named("S")],
        );
        let mut outer = Query::new(
            vec![SelectItem::Column(ColumnRef::qualified("R", "X"))],
            vec![TableRef::named("R")],
        );
        assert_eq!(outer.depth(), 1);
        outer.predicates.push(Predicate::In {
            lhs: Operand::Column(ColumnRef::qualified("R", "Y")),
            negated: false,
            query: Box::new(inner),
        });
        assert_eq!(outer.depth(), 2);
        assert_eq!(outer.direct_subqueries().len(), 1);
    }

    #[test]
    fn binding_names_respect_aliases() {
        let t = TableRef { table: "EMP_SALES".into(), alias: Some("R".into()) };
        assert_eq!(t.binding_name(), "R");
        assert_eq!(TableRef::named("F").binding_name(), "F");
    }

    #[test]
    fn degree_column_detection() {
        assert!(ColumnRef::new("D").is_degree());
        assert!(ColumnRef::qualified("R", "d").is_degree());
        assert!(!ColumnRef::new("DEPT").is_degree());
    }

    #[test]
    fn agg_parsing() {
        assert_eq!(AggFunc::from_name("max"), Some(AggFunc::Max));
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
        assert_eq!(AggFunc::Sum.name(), "SUM");
    }
}
