//! The Fuzzy SQL lexer.
//!
//! Operates on `char` boundaries throughout, so arbitrary (including
//! non-ASCII) input is rejected with a parse error rather than slicing a
//! UTF-8 sequence apart — a property enforced by the fuzz tests.

use crate::error::{ParseError, Result};
use crate::token::{is_keyword, Token, TokenKind};

/// A char-boundary-aware cursor over the source text.
struct Cursor<'a> {
    src: &'a str,
    /// `(byte offset, char)` pairs.
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { src, chars: src.char_indices().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).map(|&(_, c)| c)
    }

    /// Byte offset of the current char (or end of input).
    fn offset(&self) -> usize {
        self.chars.get(self.pos).map_or(self.src.len(), |&(o, _)| o)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// The source slice between two byte offsets (both char boundaries).
    fn slice(&self, from: usize, to: usize) -> &'a str {
        &self.src[from..to]
    }
}

/// Tokenizes a Fuzzy SQL source string.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek() {
        let offset = cur.offset();
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '-' if cur.peek2() == Some('-') => {
                // Line comment.
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            '-' if cur.peek2().is_some_and(|c| c.is_ascii_digit() || c == '.') => {
                // Negative number literal (the grammar has no arithmetic, so
                // '-' can only start one).
                tokens.push(lex_number(&mut cur)?);
            }
            '(' => simple(&mut cur, &mut tokens, TokenKind::LParen),
            ')' => simple(&mut cur, &mut tokens, TokenKind::RParen),
            ',' => simple(&mut cur, &mut tokens, TokenKind::Comma),
            '*' => simple(&mut cur, &mut tokens, TokenKind::Star),
            '~' => simple(&mut cur, &mut tokens, TokenKind::Tilde),
            '=' => simple(&mut cur, &mut tokens, TokenKind::Eq),
            '.' => {
                // A dot starting a number (".5") or a qualifier separator.
                if cur.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    tokens.push(lex_number(&mut cur)?);
                } else {
                    simple(&mut cur, &mut tokens, TokenKind::Dot);
                }
            }
            '<' => {
                cur.bump();
                let kind = match cur.peek() {
                    Some('=') => {
                        cur.bump();
                        TokenKind::Le
                    }
                    Some('>') => {
                        cur.bump();
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                };
                tokens.push(Token { kind, offset });
            }
            '>' => {
                cur.bump();
                let kind = if cur.peek() == Some('=') {
                    cur.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                };
                tokens.push(Token { kind, offset });
            }
            '!' => {
                cur.bump();
                if cur.peek() == Some('=') {
                    cur.bump();
                    tokens.push(Token { kind: TokenKind::Ne, offset });
                } else {
                    return Err(ParseError::at(offset, "unexpected character '!'"));
                }
            }
            '\'' | '"' => tokens.push(lex_string(&mut cur, c)?),
            c if c.is_ascii_digit() => tokens.push(lex_number(&mut cur)?),
            c if c.is_alphabetic() || c == '_' => tokens.push(lex_word(&mut cur)),
            other => return Err(ParseError::at(offset, format!("unexpected character {other:?}"))),
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: src.len() });
    Ok(tokens)
}

fn simple(cur: &mut Cursor<'_>, tokens: &mut Vec<Token>, kind: TokenKind) {
    tokens.push(Token { kind, offset: cur.offset() });
    cur.bump();
}

fn lex_string(cur: &mut Cursor<'_>, quote: char) -> Result<Token> {
    let start = cur.offset();
    cur.bump(); // opening quote
    let mut out = String::new();
    while let Some(c) = cur.bump() {
        if c == quote {
            // Doubled quote escapes itself.
            if cur.peek() == Some(quote) {
                out.push(quote);
                cur.bump();
                continue;
            }
            return Ok(Token { kind: TokenKind::Str(out), offset: start });
        }
        out.push(c);
    }
    Err(ParseError::at(start, "unterminated string literal"))
}

fn lex_number(cur: &mut Cursor<'_>) -> Result<Token> {
    let start = cur.offset();
    if cur.peek() == Some('-') {
        cur.bump();
    }
    let digits_start = cur.offset();
    let mut seen_dot = false;
    let mut seen_exp = false;
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() {
            cur.bump();
        } else if c == '.' && !seen_dot && !seen_exp {
            // A dot only belongs to the number if a digit follows (so `1.x`
            // and qualified names error clearly).
            if cur.peek2().is_some_and(|n| n.is_ascii_digit()) {
                seen_dot = true;
                cur.bump();
            } else {
                break;
            }
        } else if (c == 'e' || c == 'E') && !seen_exp && cur.offset() > digits_start {
            let next = cur.peek2();
            let exp_ok = match next {
                Some(d) if d.is_ascii_digit() => true,
                Some('+') | Some('-') => {
                    cur.chars.get(cur.pos + 2).is_some_and(|&(_, d)| d.is_ascii_digit())
                }
                _ => false,
            };
            if exp_ok {
                seen_exp = true;
                cur.bump(); // e
                if matches!(cur.peek(), Some('+') | Some('-')) {
                    cur.bump();
                }
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let text = cur.slice(start, cur.offset());
    let v: f64 =
        text.parse().map_err(|_| ParseError::at(start, format!("invalid number {text:?}")))?;
    Ok(Token { kind: TokenKind::Number(v), offset: start })
}

fn lex_word(cur: &mut Cursor<'_>) -> Token {
    let start = cur.offset();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            cur.bump();
        } else {
            break;
        }
    }
    let word = cur.slice(start, cur.offset());
    let kind = if is_keyword(word) {
        TokenKind::Keyword(word.to_ascii_uppercase())
    } else {
        TokenKind::Ident(word.to_string())
    };
    Token { kind, offset: start }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_query_1() {
        let ks = kinds(
            "SELECT F.NAME, M.NAME FROM F, M \
             WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'",
        );
        assert_eq!(ks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Ident("F".into()));
        assert_eq!(ks[2], TokenKind::Dot);
        assert!(ks.contains(&TokenKind::Str("medium high".into())));
        assert!(ks.contains(&TokenKind::Gt));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= ~"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Tilde,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5 .25 1e3 2.5e-2 -7 -0.5"),
            vec![
                TokenKind::Number(42.0),
                TokenKind::Number(3.5),
                TokenKind::Number(0.25),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
                TokenKind::Number(-7.0),
                TokenKind::Number(-0.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn qualified_names_are_not_numbers() {
        assert_eq!(
            kinds("R.X"),
            vec![
                TokenKind::Ident("R".into()),
                TokenKind::Dot,
                TokenKind::Ident("X".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds("'medium young' \"about 35\" 'it''s'"),
            vec![
                TokenKind::Str("medium young".into()),
                TokenKind::Str("about 35".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- the answer\n 42"),
            vec![TokenKind::Keyword("SELECT".into()), TokenKind::Number(42.0), TokenKind::Eof]
        );
    }

    #[test]
    fn bad_characters_error_with_position() {
        let err = tokenize("SELECT #").unwrap_err();
        assert!(err.to_string().contains("'#'"));
        let err = tokenize("a ! b").unwrap_err();
        assert!(err.to_string().contains('!'));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select Select SELECT"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn non_ascii_input_is_rejected_not_panicked() {
        // Multibyte characters anywhere must yield clean errors (or lex as
        // identifiers when alphabetic), never slice panics.
        assert!(tokenize("SELECT ‰ FROM R").is_err());
        assert!(tokenize("\u{87}\u{87}").is_err());
        // Alphabetic non-ASCII lexes as an identifier.
        let ks = kinds("SELECT café FROM R");
        assert!(matches!(&ks[1], TokenKind::Ident(s) if s == "café"));
        // Inside strings, any char is fine.
        let ks = kinds("'héllo ‰ wörld'");
        assert!(matches!(&ks[0], TokenKind::Str(s) if s.contains('‰')));
    }
}
