//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source where the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates an error at a byte offset.
    pub fn at(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError { offset, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for the parser.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = ParseError::at(17, "expected FROM");
        assert_eq!(e.to_string(), "parse error at byte 17: expected FROM");
    }
}
