//! Recursive-descent parser for Fuzzy SQL.
//!
//! Grammar (conjunctive WHERE, per the paper's Section 2.2 assumption):
//!
//! ```text
//! query     := SELECT [DISTINCT] item (',' item)* FROM table (',' table)*
//!              [WHERE pred (AND pred)*] [GROUP BY col (',' col)*]
//!              [WITH col ('>'|'>=') number]
//! item      := col | AGG '(' col ')' | COUNT '(' '*' ')' | MIN '(' D ')'
//! table     := ident [[AS] ident]
//! pred      := operand cmp operand
//!            | operand cmp (ALL | SOME | ANY) '(' query ')'
//!            | operand cmp '(' query ')'
//!            | operand [IS] [NOT] IN '(' query ')'
//!            | [NOT] EXISTS '(' query ')'
//! operand   := col | number | string
//! col       := ident ['.' ident]
//! ```

use crate::ast::{
    AggFunc, ColumnRef, HavingOperand, HavingPredicate, Operand, OrderBy, OrderKey, Predicate,
    Quantifier, Query, SelectItem, TableRef, Threshold,
};
use crate::error::{ParseError, Result};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};
use fuzzy_core::CmpOp;

/// Parses one Fuzzy SQL SELECT statement.
pub fn parse(src: &str) -> Result<Query> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::at(self.offset(), format!("expected {kw}, found {}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(ParseError::at(self.offset(), format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(ParseError::at(
                self.offset(),
                format!("unexpected trailing input: {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                Err(ParseError::at(self.offset(), format!("expected an identifier, found {other}")))
            }
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut select = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            select.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.eat(&TokenKind::Comma) {
            from.push(self.table_ref()?);
        }
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates.push(self.predicate()?);
            while self.eat_keyword("AND") {
                predicates.push(self.predicate()?);
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.column_ref()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.column_ref()?);
            }
        }
        let mut having = Vec::new();
        if self.eat_keyword("HAVING") {
            having.push(self.having_predicate()?);
            while self.eat_keyword("AND") {
                having.push(self.having_predicate()?);
            }
        }
        let with_threshold = if self.eat_keyword("WITH") { Some(self.threshold()?) } else { None };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let col = self.column_ref()?;
            let key = if col.is_degree() && col.table.is_none() {
                OrderKey::Degree
            } else {
                OrderKey::Column(col)
            };
            let descending = if self.eat_keyword("DESC") {
                true
            } else {
                let _ = self.eat_keyword("ASC");
                false
            };
            Some(OrderBy { key, descending })
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                TokenKind::Number(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => {
                    return Err(ParseError::at(
                        self.offset(),
                        format!("expected a non-negative integer after LIMIT, found {other}"),
                    ))
                }
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            predicates,
            group_by,
            having,
            with_threshold,
            order_by,
            limit,
        })
    }

    fn having_operand(&mut self) -> Result<HavingOperand> {
        if let TokenKind::Ident(name) = self.peek().clone() {
            if matches!(self.peek2(), TokenKind::LParen) {
                if let Some(agg) = AggFunc::from_name(&name) {
                    self.bump();
                    self.bump();
                    if agg == AggFunc::Count && self.eat(&TokenKind::Star) {
                        self.expect(TokenKind::RParen)?;
                        return Ok(HavingOperand::CountStar);
                    }
                    let col = self.column_ref()?;
                    self.expect(TokenKind::RParen)?;
                    return Ok(HavingOperand::Aggregate(agg, col));
                }
            }
        }
        Ok(match self.operand()? {
            Operand::Column(c) => HavingOperand::Column(c),
            Operand::Number(n) => HavingOperand::Number(n),
            Operand::Term(t) => HavingOperand::Term(t),
            Operand::FuzzyLiteral(..) => {
                return Err(ParseError::at(
                    self.offset(),
                    "fuzzy literals are not supported in HAVING; define a term instead",
                ))
            }
        })
    }

    fn having_predicate(&mut self) -> Result<HavingPredicate> {
        let lhs = self.having_operand()?;
        let op = self.cmp_op()?;
        let rhs = self.having_operand()?;
        Ok(HavingPredicate { lhs, op, rhs })
    }

    fn threshold(&mut self) -> Result<Threshold> {
        let col = self.column_ref()?;
        if !col.is_degree() {
            return Err(ParseError::at(
                self.offset(),
                format!("WITH clause must threshold the degree attribute D, found {col}"),
            ));
        }
        let strict = match self.bump() {
            TokenKind::Gt => true,
            TokenKind::Ge => false,
            other => {
                return Err(ParseError::at(
                    self.offset(),
                    format!("expected > or >= after WITH D, found {other}"),
                ))
            }
        };
        match self.bump() {
            TokenKind::Number(z) if (0.0..=1.0).contains(&z) => Ok(Threshold { z, strict }),
            TokenKind::Number(z) => {
                Err(ParseError::at(self.offset(), format!("WITH threshold {z} outside [0, 1]")))
            }
            other => Err(ParseError::at(
                self.offset(),
                format!("expected a threshold number, found {other}"),
            )),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // Aggregate: IDENT '(' …
        if let TokenKind::Ident(name) = self.peek().clone() {
            if matches!(self.peek2(), TokenKind::LParen) {
                if let Some(agg) = AggFunc::from_name(&name) {
                    self.bump(); // name
                    self.bump(); // (
                    if agg == AggFunc::Count && self.eat(&TokenKind::Star) {
                        self.expect(TokenKind::RParen)?;
                        return Ok(SelectItem::CountStar);
                    }
                    let col = self.column_ref()?;
                    self.expect(TokenKind::RParen)?;
                    if agg == AggFunc::Min && col.is_degree() {
                        return Ok(SelectItem::MinDegree);
                    }
                    return Ok(SelectItem::Aggregate(agg, col));
                }
            }
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let _ = self.eat_keyword("AS");
        let alias = match self.peek() {
            TokenKind::Ident(_) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { table, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            let column = self.ident()?;
            Ok(ColumnRef { table: Some(first), column })
        } else {
            Ok(ColumnRef { table: None, column: first })
        }
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.peek().clone() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(Operand::Number(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Operand::Term(s))
            }
            // Inline fuzzy literals: TRAP(a,b,c,d) / TRI(a,b,c) / ABOUT(v,w).
            TokenKind::Ident(w)
                if matches!(self.peek2(), TokenKind::LParen)
                    && ["TRAP", "TRI", "ABOUT"].iter().any(|k| w.eq_ignore_ascii_case(k)) =>
            {
                self.fuzzy_literal(&w)
            }
            TokenKind::Ident(_) => Ok(Operand::Column(self.column_ref()?)),
            other => Err(ParseError::at(
                self.offset(),
                format!("expected a column, number, or quoted term, found {other}"),
            )),
        }
    }

    fn fuzzy_literal(&mut self, kind: &str) -> Result<Operand> {
        self.bump(); // name
        self.bump(); // (
        let mut nums = Vec::new();
        loop {
            match self.bump() {
                TokenKind::Number(n) => nums.push(n),
                other => {
                    return Err(ParseError::at(
                        self.offset(),
                        format!("expected a number in {kind}(…), found {other}"),
                    ))
                }
            }
            match self.bump() {
                TokenKind::Comma => continue,
                TokenKind::RParen => break,
                other => {
                    return Err(ParseError::at(
                        self.offset(),
                        format!("expected , or ) in {kind}(…), found {other}"),
                    ))
                }
            }
        }
        let shape = match (kind.to_ascii_uppercase().as_str(), nums.as_slice()) {
            ("TRAP", [a, b, c, d]) => (*a, *b, *c, *d),
            ("TRI", [a, b, c]) => (*a, *b, *b, *c),
            ("ABOUT", [v, w]) => (*v - *w, *v, *v, *v + *w),
            (k, args) => {
                return Err(ParseError::at(
                    self.offset(),
                    format!(
                        "{k}(…) takes {} numbers, got {}",
                        match k {
                            "TRAP" => 4,
                            "TRI" => 3,
                            _ => 2,
                        },
                        args.len()
                    ),
                ))
            }
        };
        Ok(Operand::FuzzyLiteral(shape.0, shape.1, shape.2, shape.3))
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(ParseError::at(
                    self.offset(),
                    format!("expected a comparison operator, found {other}"),
                ))
            }
        };
        self.bump();
        Ok(op)
    }

    fn predicate(&mut self) -> Result<Predicate> {
        // [NOT] EXISTS ( query )
        if self.eat_keyword("EXISTS") {
            return self.exists(false);
        }
        if matches!(self.peek(), TokenKind::Keyword(k) if k == "NOT")
            && matches!(self.peek2(), TokenKind::Keyword(k) if k == "EXISTS")
        {
            self.bump();
            self.bump();
            return self.exists(true);
        }
        let lhs = self.operand()?;
        // [IS] [NOT] IN ( query )
        let had_is = self.eat_keyword("IS");
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect(TokenKind::LParen)?;
            let query = Box::new(self.query()?);
            self.expect(TokenKind::RParen)?;
            return Ok(Predicate::In { lhs, negated, query });
        }
        if had_is || negated {
            return Err(ParseError::at(
                self.offset(),
                format!("expected IN after IS/NOT, found {}", self.peek()),
            ));
        }
        // Similarity: X ~ Y WITHIN t.
        if self.eat(&TokenKind::Tilde) {
            let rhs = self.operand()?;
            self.expect_keyword("WITHIN")?;
            let tolerance = match self.bump() {
                TokenKind::Number(t) if t > 0.0 => t,
                TokenKind::Number(t) => {
                    return Err(ParseError::at(
                        self.offset(),
                        format!("similarity tolerance must be positive, got {t}"),
                    ))
                }
                other => {
                    return Err(ParseError::at(
                        self.offset(),
                        format!("expected a tolerance number after WITHIN, found {other}"),
                    ))
                }
            };
            return Ok(Predicate::Similar { lhs, rhs, tolerance });
        }
        let op = self.cmp_op()?;
        // Quantified: op ALL/SOME/ANY ( query )
        for (kw, quantifier) in
            [("ALL", Quantifier::All), ("SOME", Quantifier::Some), ("ANY", Quantifier::Some)]
        {
            if self.eat_keyword(kw) {
                self.expect(TokenKind::LParen)?;
                let query = Box::new(self.query()?);
                self.expect(TokenKind::RParen)?;
                return Ok(Predicate::Quantified { lhs, op, quantifier, query });
            }
        }
        // Aggregate sub-query: op ( SELECT … )
        if matches!(self.peek(), TokenKind::LParen)
            && matches!(self.peek2(), TokenKind::Keyword(k) if k == "SELECT")
        {
            self.bump(); // (
            let query = Box::new(self.query()?);
            self.expect(TokenKind::RParen)?;
            return Ok(Predicate::AggSubquery { lhs, op, query });
        }
        let rhs = self.operand()?;
        Ok(Predicate::Compare { lhs, op, rhs })
    }

    fn exists(&mut self, negated: bool) -> Result<Predicate> {
        self.expect(TokenKind::LParen)?;
        let query = Box::new(self.query()?);
        self.expect(TokenKind::RParen)?;
        Ok(Predicate::Exists { negated, query })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_1() {
        let q = parse(
            "SELECT F.NAME, M.NAME FROM F, M \
             WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.depth(), 1);
        match &q.predicates[1] {
            Predicate::Compare { op, rhs, .. } => {
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(*rhs, Operand::Term("medium high".into()));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parses_paper_query_2_nested_in() {
        let q = parse(
            "SELECT F.NAME FROM F \
             WHERE F.AGE = 'medium young' AND F.INCOME IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')",
        )
        .unwrap();
        assert_eq!(q.depth(), 2);
        match &q.predicates[1] {
            Predicate::In { negated, query, .. } => {
                assert!(!negated);
                assert_eq!(query.from[0].table, "M");
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parses_is_in_and_is_not_in() {
        let q = parse("SELECT R.X FROM R WHERE R.Y IS IN (SELECT S.Z FROM S)").unwrap();
        assert!(matches!(&q.predicates[0], Predicate::In { negated: false, .. }));
        let q = parse(
            "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME IS NOT IN \
             (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)",
        )
        .unwrap();
        assert!(matches!(&q.predicates[0], Predicate::In { negated: true, .. }));
        assert_eq!(q.from[0].alias.as_deref(), Some("R"));
    }

    #[test]
    fn parses_paper_query_5_aggregate() {
        let q = parse(
            "SELECT R.NAME FROM CITIES_REGION_A R \
             WHERE R.AVE_HOME_INCOME > \
             (SELECT MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S \
              WHERE S.POPULATION = R.POPULATION)",
        )
        .unwrap();
        match &q.predicates[0] {
            Predicate::AggSubquery { op, query, .. } => {
                assert_eq!(*op, CmpOp::Gt);
                assert!(matches!(query.select[0], SelectItem::Aggregate(AggFunc::Max, _)));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parses_quantifiers() {
        for (kw, quant) in
            [("ALL", Quantifier::All), ("SOME", Quantifier::Some), ("ANY", Quantifier::Some)]
        {
            let q = parse(&format!(
                "SELECT R.X FROM R WHERE R.Y < {kw} (SELECT S.Z FROM S WHERE S.V = R.U)"
            ))
            .unwrap();
            match &q.predicates[0] {
                Predicate::Quantified { quantifier, op, .. } => {
                    assert_eq!(*quantifier, quant);
                    assert_eq!(*op, CmpOp::Lt);
                }
                other => panic!("unexpected predicate {other:?}"),
            }
        }
    }

    #[test]
    fn parses_exists() {
        let q =
            parse("SELECT R.X FROM R WHERE EXISTS (SELECT S.Z FROM S WHERE S.V = R.U)").unwrap();
        assert!(matches!(&q.predicates[0], Predicate::Exists { negated: false, .. }));
        let q = parse("SELECT R.X FROM R WHERE NOT EXISTS (SELECT S.Z FROM S)").unwrap();
        assert!(matches!(&q.predicates[0], Predicate::Exists { negated: true, .. }));
    }

    #[test]
    fn parses_with_group_by_and_aggregates() {
        let q = parse(
            "SELECT R.K, R.X, MIN(D) FROM R, S \
             WHERE R.Y = S.Z GROUP BY R.K WITH D >= 0",
        )
        .unwrap();
        assert!(matches!(q.select[2], SelectItem::MinDegree));
        assert_eq!(q.group_by, vec![ColumnRef::qualified("R", "K")]);
        let th = q.with_threshold.unwrap();
        assert!(!th.strict);
        assert_eq!(th.z, 0.0);
    }

    #[test]
    fn parses_with_threshold_strict() {
        let q = parse("SELECT R.X FROM R WITH D > 0.5").unwrap();
        let th = q.with_threshold.unwrap();
        assert!(th.strict);
        assert_eq!(th.z, 0.5);
        // Out-of-range thresholds rejected.
        assert!(parse("SELECT R.X FROM R WITH D > 1.5").is_err());
        // Non-degree columns rejected.
        assert!(parse("SELECT R.X FROM R WITH R.X > 0.5").is_err());
    }

    #[test]
    fn parses_count_star_and_distinct() {
        let q = parse("SELECT DISTINCT COUNT(*) FROM R").unwrap();
        assert!(q.distinct);
        assert!(matches!(q.select[0], SelectItem::CountStar));
    }

    #[test]
    fn parses_three_level_chain() {
        let q = parse(
            "SELECT R1.X1 FROM R1 WHERE R1.Y1 IN \
             (SELECT R2.X2 FROM R2 WHERE R2.U2 = R1.U1 AND R2.X2 IN \
              (SELECT R3.X3 FROM R3 WHERE R3.V3 = R2.V2 AND R3.W3 = R1.W1))",
        )
        .unwrap();
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse("SELECT FROM R").unwrap_err();
        assert!(err.to_string().contains("identifier"));
        let err = parse("SELECT R.X R").unwrap_err();
        assert!(err.to_string().contains("expected FROM"));
        let err = parse("SELECT R.X FROM R WHERE R.Y IS 5").unwrap_err();
        assert!(err.to_string().contains("IN"));
        let err = parse("SELECT R.X FROM R extra garbage()").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn mixed_literal_operands() {
        let q = parse("SELECT R.X FROM R WHERE R.AGE >= 21 AND R.NAME = 'Ann'").unwrap();
        assert!(matches!(
            &q.predicates[0],
            Predicate::Compare { rhs: Operand::Number(v), .. } if *v == 21.0
        ));
        assert!(matches!(
            &q.predicates[1],
            Predicate::Compare { rhs: Operand::Term(t), .. } if t == "Ann"
        ));
    }
}

#[cfg(test)]
mod similar_tests {
    use super::*;

    #[test]
    fn parses_similarity_predicates() {
        let q = parse("SELECT R.X FROM R WHERE R.AGE ~ 30 WITHIN 5").unwrap();
        match &q.predicates[0] {
            Predicate::Similar { rhs, tolerance, .. } => {
                assert_eq!(*rhs, Operand::Number(30.0));
                assert_eq!(*tolerance, 5.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Column-to-column similarity with a nested query around it.
        let q = parse(
            "SELECT R.X FROM R WHERE R.AGE ~ R.RETIREMENT_AGE WITHIN 2.5 AND R.Y IN \
             (SELECT S.Y FROM S WHERE S.V ~ R.U WITHIN 1)",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 2);
        // Round-trips through Display.
        let q2 = parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn similarity_errors() {
        assert!(parse("SELECT R.X FROM R WHERE R.AGE ~ 30").is_err(), "missing WITHIN");
        assert!(parse("SELECT R.X FROM R WHERE R.AGE ~ 30 WITHIN 0").is_err(), "zero tolerance");
        assert!(parse("SELECT R.X FROM R WHERE R.AGE ~ 30 WITHIN -1").is_err());
        assert!(parse("SELECT R.X FROM R WHERE R.AGE ~ 30 WITHIN abc").is_err());
    }

    #[test]
    fn similarity_does_not_change_classification() {
        use crate::classify::{classify, QueryClass};
        let q = parse(
            "SELECT R.X FROM R WHERE R.AGE ~ 30 WITHIN 5 AND R.Y IN \
             (SELECT S.Y FROM S WHERE S.U = R.U)",
        )
        .unwrap();
        assert_eq!(classify(&q), QueryClass::TypeJ);
    }
}

#[cfg(test)]
mod extended_clause_tests {
    use super::*;
    use crate::ast::{HavingOperand, OrderKey};

    #[test]
    fn parses_having() {
        let q = parse(
            "SELECT R.REGION FROM R GROUP BY R.REGION \
             HAVING COUNT(*) > 2 AND AVG(R.AMOUNT) >= 10",
        )
        .unwrap();
        assert_eq!(q.having.len(), 2);
        assert!(matches!(q.having[0].lhs, HavingOperand::CountStar));
        assert!(matches!(q.having[1].lhs, HavingOperand::Aggregate(AggFunc::Avg, _)));
        assert!(matches!(q.having[1].rhs, HavingOperand::Number(n) if n == 10.0));
    }

    #[test]
    fn parses_order_by_and_limit() {
        let q = parse("SELECT R.X FROM R ORDER BY D DESC LIMIT 5").unwrap();
        let o = q.order_by.as_ref().unwrap();
        assert_eq!(o.key, OrderKey::Degree);
        assert!(o.descending);
        assert_eq!(q.limit, Some(5));

        let q = parse("SELECT R.X FROM R ORDER BY R.X ASC").unwrap();
        let o = q.order_by.as_ref().unwrap();
        assert!(matches!(&o.key, OrderKey::Column(c) if c.column == "X"));
        assert!(!o.descending);
        assert_eq!(q.limit, None);

        // R.D qualified is a column named D of R, not the degree pseudo-key.
        let q = parse("SELECT R.X FROM R ORDER BY R.D").unwrap();
        assert!(matches!(&q.order_by.as_ref().unwrap().key, OrderKey::Column(_)));
    }

    #[test]
    fn limit_validation() {
        assert!(parse("SELECT R.X FROM R LIMIT -1").is_err());
        assert!(parse("SELECT R.X FROM R LIMIT 1.5").is_err());
        assert!(parse("SELECT R.X FROM R LIMIT abc").is_err());
        assert_eq!(parse("SELECT R.X FROM R LIMIT 0").unwrap().limit, Some(0));
    }

    #[test]
    fn clause_order_is_enforced() {
        // WITH comes before ORDER BY; the reverse fails as trailing input.
        assert!(parse("SELECT R.X FROM R WITH D > 0.5 ORDER BY D").is_ok());
        assert!(parse("SELECT R.X FROM R ORDER BY D WITH D > 0.5").is_err());
    }
}
