#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh --quick  # skip the release build (lints + debug tests)
#
# The workspace must stay warning-free under clippy; the tier-1 suite is
# the root package's release build plus `cargo test` (the integration and
# property tests of the fuzzy-db facade), followed by the full workspace
# test run.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
  echo "==> cargo build --release (tier-1)"
  cargo build --release
fi

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "CI gate passed."
