#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh --quick  # skip the release build (lints + debug tests)
#
# The workspace must stay warning-free under clippy; the tier-1 suite is
# the root package's release build plus `cargo test` (the integration and
# property tests of the fuzzy-db facade), followed by the full workspace
# test run.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
  echo "==> cargo build --release (tier-1)"
  cargo build --release
fi

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> EXPLAIN golden suite (fails on drift; UPDATE_GOLDEN=1 regenerates)"
cargo test -q --test explain_golden

echo "==> metrics hygiene (no dead_code escapes on the registry)"
if grep -n '#\[allow(dead_code)\]' crates/core/src/metrics.rs crates/core/src/explain.rs; then
  echo "error: metrics/explain code must not silence dead_code — wire the field up or remove it" >&2
  exit 1
fi

echo "CI gate passed."
