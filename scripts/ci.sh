#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh --quick  # skip the release build (lints + debug tests)
#
# The workspace must stay warning-free under clippy; the tier-1 suite is
# the root package's release build plus `cargo test` (the integration and
# property tests of the fuzzy-db facade), followed by the full workspace
# test run.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
  echo "==> cargo build --release (tier-1)"
  cargo build --release
fi

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

if [[ $quick -eq 0 ]]; then
  echo "==> concurrent serving stress (release: races surface, timings real)"
  cargo test -q --release --test concurrent_serving
fi

echo "==> EXPLAIN golden suite (fails on drift; UPDATE_GOLDEN=1 regenerates)"
cargo test -q --test explain_golden

echo "==> static plan verifier suite (corpus + injected failures + goldens)"
cargo test -q --test verify_plans
cargo test -q --test verify_golden

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> unsafe hygiene (every crate must forbid unsafe_code)"
for f in src/lib.rs crates/*/src/lib.rs; do
  if ! grep -q '^#!\[forbid(unsafe_code)\]' "$f"; then
    echo "error: $f does not carry #![forbid(unsafe_code)]" >&2
    exit 1
  fi
done

echo "==> panic hygiene (no unwrap/expect in non-test core engine code)"
# Non-test = everything before the first #[cfg(test)] block of each file.
# Allowed: the documented invariant expects listed in the allowlist.
panics=$(for f in crates/core/src/*.rs crates/core/src/exec/*.rs; do
  awk '/^#\[cfg\(test\)\]/{exit} {print FILENAME":"NR": "$0}' "$f"
done | grep -E '\.unwrap\(\)|\.expect\(' | grep -vFf scripts/unwrap_expect_allowlist.txt || true)
if [[ -n "$panics" ]]; then
  echo "error: unlisted unwrap()/expect() in non-test engine code — return an" >&2
  echo "EngineError or add the documented invariant to scripts/unwrap_expect_allowlist.txt:" >&2
  echo "$panics" >&2
  exit 1
fi

echo "==> operator declarations (the verifier checks the tree that runs)"
# Every exec/ operator module that opens a metered operator (begin_op, i.e.
# constructs an OpGuard) must also carry its physical-property declaration;
# mod.rs is the executor shell that *defines* begin_op.
undeclared=$(for f in crates/core/src/exec/*.rs; do
  [[ "$f" == */mod.rs ]] && continue
  if grep -q 'begin_op(' "$f" && ! grep -q 'declared_properties' "$f"; then
    echo "$f"
  fi
done)
if [[ -n "$undeclared" ]]; then
  echo "error: operator module(s) construct an OpGuard without a declared_properties impl:" >&2
  echo "$undeclared" >&2
  exit 1
fi

echo "==> metrics/planner hygiene (no dead_code escapes)"
if grep -n '#\[allow(dead_code)\]' crates/core/src/metrics.rs crates/core/src/explain.rs \
    crates/core/src/verify.rs crates/core/src/plan.rs crates/core/src/optimizer.rs; then
  echo "error: engine code must not silence dead_code — wire the field up or remove it" >&2
  exit 1
fi

echo "==> serving surface (query entry points must be &self: sessions share them)"
# The concurrent serving layer (DESIGN.md §12) requires every query path on
# the facade to take &self; only the DDL/DML/config surface below may take
# &mut self. A new &mut self method on Database/Session/QueryBuilder/
# PreparedQuery must either join this allowlist (a mutation) or take &self.
allowed='^(define_term|create_table|insert|load|execute|catalog_mut|set_exec_config|set_threads|set_default_threshold|set_cost_model)$'
mut_entry_points=$(awk '
  /pub fn [a-z_]+/ { name = $0; sub(/.*pub fn /, "", name); sub(/[^a-z_].*/, "", name); capture = 4 }
  capture > 0 { if (/&mut self/) print FILENAME ":" name; capture-- }
' src/lib.rs src/serving.rs | sort -u | awk -F: -v allowed="$allowed" '$2 !~ allowed { print }')
if [[ -n "$mut_entry_points" ]]; then
  echo "error: new &mut self entry point(s) on the serving facade — query paths" >&2
  echo "must take &self (sessions run them concurrently); if this is genuinely a" >&2
  echo "DDL/DML or config mutation, add it to the allowlist in scripts/ci.sh:" >&2
  echo "$mut_entry_points" >&2
  exit 1
fi

echo "CI gate passed."
